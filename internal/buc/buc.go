// Package buc implements the classic BUC algorithm (Beyer & Ramakrishnan,
// SIGMOD 1999) as the paper's first baseline: bottom-up depth-first
// computation of the complete (or iceberg) flat cube with shared sorting,
// but no redundancy elimination — every tuple of every node is fully
// materialized with its dimension values and aggregates.
package buc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"cure/internal/hierarchy"
	"cure/internal/lattice"
	"cure/internal/relation"
	"cure/internal/sortutil"
	"cure/internal/storage"
)

const (
	manifestFile = "buc.json"
	dataFile     = "buc.bin"
	// allCode marks a dimension aggregated away in a stored tuple; BUC
	// stores full-width rows, NULL-padded, as flat ROLAP cubes do.
	allCode int32 = -1
)

// Options configures a BUC build.
type Options struct {
	// Dir is the output directory.
	Dir string
	// Iceberg is the min-count threshold (≤1 builds the complete cube).
	Iceberg int64
	// ForceQuickSort disables counting sort (skew ablation).
	ForceQuickSort bool
}

// Stats reports a build.
type Stats struct {
	Tuples  int64
	Nodes   int
	Bytes   int64
	Elapsed time.Duration
}

// manifest catalogs a BUC cube directory.
type manifest struct {
	NumDims  int                       `json:"num_dims"`
	AggSpecs []relation.AggSpec        `json:"agg_specs"`
	Cards    []int32                   `json:"cards"`
	DimNames []string                  `json:"dim_names"`
	Nodes    map[string]storage.Extent `json:"nodes"`
	Iceberg  int64                     `json:"iceberg"`
}

// rowWidth is the fixed stored-tuple width: D dims + Y aggregates.
func rowWidth(numDims, numAggrs int) int { return 4*numDims + 8*numAggrs }

// Build computes the flat cube of t. The hierarchy is ignored beyond base
// cardinalities (BUC does not support hierarchies); pass a flattened
// schema for hierarchical data.
func Build(t *relation.FactTable, hier *hierarchy.Schema, specs []relation.AggSpec, opts Options) (*Stats, error) {
	start := time.Now()
	if opts.Dir == "" {
		return nil, errors.New("buc: missing output directory")
	}
	if len(specs) == 0 {
		return nil, errors.New("buc: need at least one aggregate")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	flat := hier.Flatten()
	enum := lattice.NewEnum(flat)
	ew, err := storage.NewExtentWriter(filepath.Join(opts.Dir, dataFile+".log"), rowWidth(flat.NumDims(), len(specs)), 0)
	if err != nil {
		return nil, err
	}
	b := &builder{
		t:        t,
		flat:     flat,
		specs:    specs,
		enum:     enum,
		ew:       ew,
		idx:      sortutil.Iota(nil, t.Len()),
		dims:     make([]int32, flat.NumDims()),
		levels:   make([]int, flat.NumDims()),
		row:      make([]byte, rowWidth(flat.NumDims(), len(specs))),
		aggBuf:   make([]float64, len(specs)),
		minCount: opts.Iceberg,
	}
	if b.minCount < 1 {
		b.minCount = 1
	}
	b.sorter.ForceQuick = opts.ForceQuickSort
	for d := range b.dims {
		b.dims[d] = allCode
		b.levels[d] = 1 // flat ALL level
	}
	if t.Len() > 0 {
		if err := b.buc(0, t.Len(), 0); err != nil {
			ew.Abort()
			return nil, err
		}
	}
	extents, err := ew.Compact(filepath.Join(opts.Dir, dataFile))
	if err != nil {
		return nil, err
	}
	m := &manifest{
		NumDims:  flat.NumDims(),
		AggSpecs: specs,
		Iceberg:  opts.Iceberg,
		Nodes:    map[string]storage.Extent{},
	}
	for _, d := range flat.Dims {
		m.Cards = append(m.Cards, d.Card(0))
		m.DimNames = append(m.DimNames, d.Name)
	}
	for id, ext := range extents {
		m.Nodes[fmt.Sprintf("%d", id)] = ext
	}
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(opts.Dir, manifestFile), data, 0o644); err != nil {
		return nil, err
	}
	st := &Stats{Tuples: b.tuples, Nodes: len(extents), Elapsed: time.Since(start)}
	if fi, err := os.Stat(filepath.Join(opts.Dir, dataFile)); err == nil {
		st.Bytes = fi.Size()
	}
	return st, nil
}

type builder struct {
	t        *relation.FactTable
	flat     *hierarchy.Schema
	specs    []relation.AggSpec
	enum     *lattice.Enum
	ew       *storage.ExtentWriter
	sorter   sortutil.Sorter
	idx      []int32
	dims     []int32 // current group's values; allCode when aggregated away
	levels   []int   // 0 = grouped, 1 = ALL, per dim
	row      []byte
	aggBuf   []float64
	tuples   int64
	minCount int64
}

// buc is the classic recursion: output the aggregate of the current
// segment for the current grouping, then for each remaining dimension
// sort the segment and recurse into each run.
func (b *builder) buc(lo, hi, dim int) error {
	if int64(hi-lo) < b.minCount {
		return nil
	}
	if err := b.output(lo, hi); err != nil {
		return err
	}
	for d := dim; d < b.flat.NumDims(); d++ {
		key := sortutil.SliceKeyer{Col: b.t.Dims[d], Hi: b.flat.Dims[d].Card(0)}
		seg := b.idx[lo:hi]
		b.sorter.Sort(seg, key)
		b.levels[d] = 0
		runLo := 0
		for runLo < len(seg) {
			code := key.Key(seg[runLo])
			runHi := runLo + 1
			for runHi < len(seg) && key.Key(seg[runHi]) == code {
				runHi++
			}
			b.dims[d] = code
			if err := b.buc(lo+runLo, lo+runHi, d+1); err != nil {
				return err
			}
			runLo = runHi
		}
		b.dims[d] = allCode
		b.levels[d] = 1
	}
	return nil
}

// output materializes the current group's tuple into its node's extent.
func (b *builder) output(lo, hi int) error {
	aggs := relation.AggregateRange(b.t, b.specs, b.idx, lo, hi, b.aggBuf)
	node := b.enum.Encode(b.levels)
	off := 0
	for _, v := range b.dims {
		binary.LittleEndian.PutUint32(b.row[off:], uint32(v))
		off += 4
	}
	for _, v := range aggs {
		binary.LittleEndian.PutUint64(b.row[off:], math.Float64bits(v))
		off += 8
	}
	b.tuples++
	return b.ew.Append(node, b.row)
}

// Engine answers node queries over a BUC cube: a straight scan of the
// node's extent (dimension values are stored inline, so no fact-table
// access is needed — BUC's storage is big but its queries are direct).
type Engine struct {
	dir   string
	m     *manifest
	f     *os.File
	width int
}

// Open opens a BUC cube directory.
func Open(dir string) (*Engine, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	m := &manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("buc: parsing manifest: %w", err)
	}
	f, err := os.Open(filepath.Join(dir, dataFile))
	if err != nil {
		return nil, err
	}
	return &Engine{dir: dir, m: m, f: f, width: rowWidth(m.NumDims, len(m.AggSpecs))}, nil
}

// Close releases the engine.
func (e *Engine) Close() error { return e.f.Close() }

// NumDims returns the cube's dimensionality.
func (e *Engine) NumDims() int { return e.m.NumDims }

// Row is one BUC result tuple: values of the grouped dimensions in
// dimension order, then aggregates.
type Row struct {
	Dims  []int32
	Aggrs []float64
}

// NodeQuery streams the tuples of node id (an id in the flat lattice
// enumeration: level 0 = grouped, 1 = ALL per dimension).
func (e *Engine) NodeQuery(id lattice.NodeID, fn func(Row) error) error {
	ext, ok := e.m.Nodes[fmt.Sprintf("%d", id)]
	if !ok {
		return nil
	}
	buf, err := storage.ReadExtent(e.f, ext, e.width)
	if err != nil {
		return err
	}
	numAggrs := len(e.m.AggSpecs)
	row := Row{Aggrs: make([]float64, numAggrs)}
	full := make([]int32, e.m.NumDims)
	for i := int64(0); i < ext.Rows; i++ {
		rec := buf[i*int64(e.width):]
		for d := 0; d < e.m.NumDims; d++ {
			full[d] = int32(binary.LittleEndian.Uint32(rec[4*d:]))
		}
		row.Dims = row.Dims[:0]
		for _, v := range full {
			if v != allCode {
				row.Dims = append(row.Dims, v)
			}
		}
		for a := 0; a < numAggrs; a++ {
			row.Aggrs[a] = math.Float64frombits(binary.LittleEndian.Uint64(rec[4*e.m.NumDims+8*a:]))
		}
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}

// NodeCount returns the tuple count of a node.
func (e *Engine) NodeCount(id lattice.NodeID) int64 {
	return e.m.Nodes[fmt.Sprintf("%d", id)].Rows
}
