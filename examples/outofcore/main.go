// Out-of-core: cube a fact table that exceeds the configured memory
// budget. CURE picks the partitioning level L on the first dimension
// (§4's observations 1–3, the arithmetic of Table 1), splits the table
// into partitions sound on A_L while hash-building the small node N in
// the same pass, and then cubes partitions and N separately. The example
// verifies the result against an unconstrained in-memory build.
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cure/internal/core"
	"cure/internal/gen"
	"cure/internal/lattice"
	"cure/internal/partition"
	"cure/internal/query"
	"cure/internal/relation"
)

func main() {
	root, err := os.MkdirTemp("", "outofcore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// ~50K APB-1 rows ≈ 1.4 MB on disk; a 512 KiB budget forces the
	// external path.
	factPath := filepath.Join(root, "apb.bin")
	rows, hier, err := gen.APBToFile(factPath, 0.004, 11)
	if err != nil {
		log.Fatal(err)
	}
	const budget = 512 << 10
	rowWidth := int64(gen.APBSchemaRelation().RowWidth())
	fmt.Printf("fact table: %d rows (%.1f MB), memory budget %d KB\n",
		rows, float64(rows*rowWidth)/(1<<20), budget>>10)

	// Show the partition-plan arithmetic before building (what Table 1
	// of the paper tabulates for the SALES example).
	choice, err := partition.SelectLevel(hier.Dims[0], rows*rowWidth, budget/2, budget/4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition plan: L = %s (level %d), %d partitions of ≤%d KB, |A0|/|A(L+1)| = %.0f, |N| ≈ %d KB\n\n",
		hier.Dims[0].LevelName(choice.Level), choice.Level, choice.NumPartitions,
		choice.PartitionBytes>>10, choice.Ratio, choice.NBytes>>10)

	specs := []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
	outDir := filepath.Join(root, "cube")
	stats, err := core.Build(core.Options{
		Dir:          outDir,
		FactPath:     factPath,
		Hier:         hier,
		AggSpecs:     specs,
		MemoryBudget: budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-of-core build: %v, partitioned at level %d into %d partitions (N: %d rows)\n",
		stats.Elapsed, stats.PartitionLevel, stats.NumPartitions, stats.NRows)

	refDir := filepath.Join(root, "ref")
	refStats, err := core.Build(core.Options{
		Dir:      refDir,
		FactPath: factPath,
		Hier:     hier,
		AggSpecs: specs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-memory reference: %v\n\n", refStats.Elapsed)

	// Verify: every node of both cubes returns the same aggregate total
	// and tuple count.
	a, err := query.OpenDefault(outDir)
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	b, err := query.OpenDefault(refDir)
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	checked := 0
	for _, id := range a.Enum().AllNodes() {
		sumA, nA := total(a, id)
		sumB, nB := total(b, id)
		if sumA != sumB || nA != nB {
			log.Fatalf("node %s diverges: out-of-core (%g, %d) vs in-memory (%g, %d)",
				a.Enum().Name(id), sumA, nA, sumB, nB)
		}
		checked++
	}
	fmt.Printf("verified: all %d nodes identical between the two builds\n", checked)
}

func total(e *query.Engine, id lattice.NodeID) (float64, int64) {
	var sum float64
	var n int64
	if err := e.NodeQuery(id, func(row query.Row) error {
		sum += row.Aggrs[0]
		n++
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	return sum, n
}
