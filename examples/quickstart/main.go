// Quickstart: build the cube of the paper's running example (the fact
// table of Figure 9a) and read every node back, demonstrating the public
// API end to end: hierarchy declaration, cube construction, node queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"cure/internal/core"
	"cure/internal/hierarchy"
	"cure/internal/query"
	"cure/internal/relation"
)

func main() {
	// Figure 9a: a fact table R(A, B, C; M) with five tuples.
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, 5)
	for _, row := range [][4]int32{
		{1, 1, 1, 10},
		{1, 1, 2, 20},
		{2, 2, 3, 40},
		{3, 2, 1, 45},
		{3, 3, 3, 45},
	} {
		ft.Append([]int32{row[0] - 1, row[1] - 1, row[2] - 1}, []float64{float64(row[3])})
	}

	// Flat dimensions (the paper's example uses no hierarchies here);
	// each has three distinct values.
	hier, err := hierarchy.NewSchema(
		hierarchy.NewFlatDim("A", 3),
		hierarchy.NewFlatDim("B", 3),
		hierarchy.NewFlatDim("C", 3),
	)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	stats, err := core.BuildFromTable(ft, core.Options{
		Dir:      dir,
		Hier:     hier,
		AggSpecs: []relation.AggSpec{{Func: relation.AggSum, Measure: 0}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built the cube of Figure 9 in %v\n", stats.Elapsed)
	fmt.Printf("trivial tuples stored: %d (the A=2 tuple, shared by A, AB, AC, ABC)\n", stats.TTs)
	fmt.Printf("CAT storage format:    %v\n\n", stats.CatFormat)

	eng, err := query.OpenDefault(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Walk all 8 nodes of the lattice and print their contents — compare
	// with Figure 9b of the paper (values here are 0-based).
	for _, id := range eng.Enum().AllNodes() {
		fmt.Printf("node %s:\n", eng.Enum().Name(id))
		if err := eng.NodeQuery(id, func(row query.Row) error {
			fmt.Printf("  dims=%v  SUM(M)=%g\n", row.Dims, row.Aggrs[0])
			return nil
		}); err != nil {
			log.Fatal(err)
		}
	}
}
