// Retail: build a hierarchical cube over an APB-1-style sales fact table
// and navigate it the way an analyst would — roll-up from product classes
// to divisions, drill back down, and run an iceberg query for the
// best-selling product codes.
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"os"

	"cure/internal/core"
	"cure/internal/gen"
	"cure/internal/lattice"
	"cure/internal/query"
	"cure/internal/relation"
)

func main() {
	// ~12K sales rows over the APB-1 schema: Product with six hierarchy
	// levels, Customer with two, Time with three, flat Channel.
	ft, hier, err := gen.APB(0.001, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fact table: %d sales rows, %d lattice nodes\n", ft.Len(), hier.NumNodes())

	dir, err := os.MkdirTemp("", "retail")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	stats, err := core.BuildFromTable(ft, core.Options{
		Dir:  dir,
		Hier: hier,
		AggSpecs: []relation.AggSpec{
			{Func: relation.AggSum, Measure: 1}, // SUM(DollarSales)
			{Func: relation.AggCount},
		},
		Plus: true, // CURE+: sorted row-ids for sequential query scans
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cube built in %v: %d nodes materialized, %s on disk\n\n",
		stats.Elapsed, stats.NodesMaterialized, size(stats.Sizes.Total()))

	eng, err := query.OpenDefault(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	enum := eng.Enum()

	// Start at Product Division (coarsest real level), everything else
	// aggregated away: levels are (dim0=Division=5, rest=ALL).
	node := enum.Encode([]int{5, 2, 3, 1})
	fmt.Printf("revenue by %s:\n", enum.Name(node))
	show(eng, node, 5)

	// Drill down one level: Division → Line.
	node, _ = eng.DrillDown(node, 0)
	fmt.Printf("\ndrill-down to %s:\n", enum.Name(node))
	show(eng, node, 5)

	// Add the Customer dimension at Retailer level and roll Product back
	// up: a typical pivot.
	node = enum.Encode([]int{5, 1, 3, 1})
	fmt.Printf("\npivot to %s:\n", enum.Name(node))
	show(eng, node, 5)

	// Iceberg: product codes with more than 12 sales. Trivial tuples
	// (codes sold exactly once) are skipped without being read.
	codes := enum.Encode([]int{0, 2, 3, 1})
	fmt.Printf("\niceberg over %s (COUNT > 12):\n", enum.Name(codes))
	if err := eng.IcebergQuery(codes, 1, 12, func(row query.Row) error {
		fmt.Printf("  product code %5d: %4.0f sales, $%.0f\n", row.Dims[0], row.Aggrs[1], row.Aggrs[0])
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}

func show(eng *query.Engine, node lattice.NodeID, limit int) {
	shown := 0
	if err := eng.NodeQuery(node, func(row query.Row) error {
		if shown < limit {
			fmt.Printf("  %v: $%.0f over %.0f sales\n", row.Dims, row.Aggrs[0], row.Aggrs[1])
			shown++
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}

func size(b int64) string {
	if b < 1<<20 {
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
}
