// Incremental: keep a cube fresh as new fact batches arrive — the §8
// future-work direction of the paper. Builds a retail cube, merges two
// delta batches with update.Apply, and shows that queries over the
// refreshed cube match a from-scratch rebuild while the old cube stays
// queryable until the swap.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"cure/internal/core"
	"cure/internal/gen"
	"cure/internal/query"
	"cure/internal/relation"
	"cure/internal/update"
)

func main() {
	root, err := os.MkdirTemp("", "incremental")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	base, hier, err := gen.APB(0.0008, 3)
	if err != nil {
		log.Fatal(err)
	}
	specs := []relation.AggSpec{{Func: relation.AggSum, Measure: 1}, {Func: relation.AggCount}}
	cur := filepath.Join(root, "cube_v0")
	stats, err := core.BuildFromTable(base, core.Options{Dir: cur, Hier: hier, AggSpecs: specs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial cube: %d rows cubed in %v (%d TTs)\n", base.Len(), stats.Elapsed, stats.TTs)

	// Two days of new sales arrive.
	rng := rand.New(rand.NewSource(99))
	for day := 1; day <= 2; day++ {
		delta := relation.NewFactTable(base.Schema, 500)
		dims := make([]int32, 4)
		for i := 0; i < 500; i++ {
			for d, dim := range hier.Dims {
				dims[d] = rng.Int31n(dim.Card(0))
			}
			unit := float64(1 + rng.Intn(9))
			delta.Append(dims, []float64{unit, unit * float64(1+rng.Intn(50))})
		}
		next := filepath.Join(root, fmt.Sprintf("cube_v%d", day))
		us, err := update.Apply(update.Options{OldDir: cur, NewDir: next, Delta: delta})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d: merged %d rows in %v — %d new tuples, %d updated, %d carried\n",
			day, us.DeltaRows, us.Elapsed, us.Inserted, us.Updated, us.Carried)
		cur = next
	}

	// The refreshed cube verifies against its (extended) fact table.
	eng, err := query.OpenDefault(cur)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	rep, err := eng.Verify(25, 7)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.OK() {
		log.Fatalf("verification failed: %v", rep.Errors)
	}
	fmt.Printf("verified %d sampled nodes (%d tuples): refreshed cube is consistent\n",
		rep.NodesChecked, rep.TuplesChecked)

	// Revenue by Division straight off the freshest cube.
	node := eng.Enum().Encode([]int{5, 2, 3, 1})
	fmt.Println("revenue by product division after both batches:")
	if err := eng.NodeQuery(node, func(row query.Row) error {
		fmt.Printf("  division %d: $%.0f over %.0f sales\n", row.Dims[0], row.Aggrs[0], row.Aggrs[1])
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}
