// CSV import: the full path from raw CSV data to a queryable hierarchical
// cube — dictionary-encode string columns, derive a date hierarchy from
// the raw values (day → month → year), build the cube, and answer
// queries decoded back into the original strings.
//
//	go run ./examples/csvimport
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cure/internal/core"
	"cure/internal/csvload"
	"cure/internal/hierarchy"
	"cure/internal/query"
	"cure/internal/relation"
)

func main() {
	// Synthesize a raw CSV of retail transactions.
	var b strings.Builder
	b.WriteString("date,city,product,amount\n")
	rng := rand.New(rand.NewSource(7))
	cities := []string{"London", "Paris", "Berlin", "Madrid", "Rome"}
	products := []string{"espresso", "latte", "flat-white", "mocha"}
	for i := 0; i < 2000; i++ {
		month := 1 + rng.Intn(6)
		day := 1 + rng.Intn(28)
		fmt.Fprintf(&b, "2024-%02d-%02d,%s,%s,%d\n",
			month, day, cities[rng.Intn(len(cities))], products[rng.Intn(len(products))], 2+rng.Intn(8))
	}

	ft, dict, err := csvload.Load(strings.NewReader(b.String()), csvload.Spec{
		DimCols:     []string{"date", "city", "product"},
		MeasureCols: []string{"amount"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d rows: %d dates, %d cities, %d products\n",
		ft.Len(), dict.Dims[0].Card(), dict.Dims[1].Card(), dict.Dims[2].Card())

	// Derive the date hierarchy day → month → year from the raw strings.
	dateDim, dateDicts, err := csvload.BuildDim(dict.Dims[0], []csvload.LevelSpec{
		{Name: "month", Classify: func(v string) string { return v[:7] }},
		{Name: "year", Classify: func(v string) string { return v[:4] }},
	})
	if err != nil {
		log.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(
		dateDim,
		hierarchy.NewFlatDim("city", dict.Dims[1].Card()),
		hierarchy.NewFlatDim("product", dict.Dims[2].Card()),
	)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "csvimport")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := core.BuildFromTable(ft, core.Options{
		Dir:  filepath.Join(dir, "cube"),
		Hier: hier,
		AggSpecs: []relation.AggSpec{
			{Func: relation.AggSum, Measure: 0},
			{Func: relation.AggCount},
		},
	}); err != nil {
		log.Fatal(err)
	}
	eng, err := query.OpenDefault(filepath.Join(dir, "cube"))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Revenue by month (derived level 1 of the date dimension), decoded.
	monthNode := eng.Enum().Encode([]int{1, 1, 1})
	type row struct {
		month string
		sum   float64
	}
	var rows []row
	if err := eng.NodeQuery(monthNode, func(r query.Row) error {
		rows = append(rows, row{dateDicts[1].Value(r.Dims[0]), r.Aggrs[0]})
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].month < rows[j].month })
	fmt.Println("\nrevenue by month:")
	for _, r := range rows {
		fmt.Printf("  %s: %4.0f\n", r.month, r.sum)
	}

	// Slice: product mix in one city, decoded through the dictionaries.
	parisCode, _ := dict.Dims[1].Code("Paris")
	prodNode := eng.Enum().Encode([]int{3, 1, 0}) // date=ALL, city=ALL, product=base
	fmt.Println("\nProduct mix in Paris:")
	if err := eng.SliceQuery(prodNode, 1, 0, parisCode, func(r query.Row) error {
		// The slice refines the node to group by (city, product); dims
		// are (city, product) in dimension order.
		fmt.Printf("  %-12s %4.0f\n", dict.Dims[2].Value(r.Dims[1]), r.Aggrs[0])
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}
