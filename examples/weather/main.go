// Weather: cube a Sep85L-style cloud-report dataset (flat, with dense
// areas) and compare the storage formats and query behaviour the paper
// evaluates on this dataset: CURE vs CURE+ sizes, the effect of the
// fact-table cache on query time, and the NT/TT/CAT breakdown.
//
//	go run ./examples/weather
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"cure/internal/core"
	"cure/internal/gen"
	"cure/internal/lattice"
	"cure/internal/query"
	"cure/internal/relation"
)

func main() {
	// A 2% sample of Sep85L's shape: 9 dimensions, ~20K reports, 30% of
	// them inside a dense sub-domain (the paper's "dense areas").
	ft, hier, err := gen.Sep85LLike(0.02, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weather reports: %d rows, %d dimensions, %d lattice nodes\n",
		ft.Len(), hier.NumDims(), hier.NumNodes())

	root, err := os.MkdirTemp("", "weather")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	specs := []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
	for _, v := range []struct {
		label string
		plus  bool
	}{
		{"CURE", false}, {"CURE+", true},
	} {
		dir := filepath.Join(root, v.label)
		stats, err := core.BuildFromTable(ft, core.Options{Dir: dir, Hier: hier, AggSpecs: specs, Plus: v.plus})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: built in %v\n", v.label, stats.Elapsed)
		fmt.Printf("  trivial tuples %d, NTs %d, CATs in %d groups (format %v)\n",
			stats.TTs, stats.Pool.NTs, stats.Pool.CatGroups, stats.CatFormat)
		fmt.Printf("  size %s (NT %s, TT %s, CAT %s, AGGREGATES %s, bitmaps %s)\n",
			kb(stats.Sizes.Total()), kb(stats.Sizes.NT), kb(stats.Sizes.TT),
			kb(stats.Sizes.CAT), kb(stats.Sizes.Agg), kb(stats.Sizes.Bitmap))
	}

	// The paper's Figure 17: how much the fact-table cache matters for
	// query time (every TT/NT dereferences an R-rowid).
	dir := filepath.Join(root, "CURE+")
	workload := gen.NodeWorkload(queryEnum(dir), 200, 99)
	fmt.Println("\nfact-cache sweep (200 random node queries):")
	for _, frac := range []float64{0, 0.5, 1} {
		eng, err := query.Open(dir, query.Options{CacheFraction: frac, PinAggregates: true})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		var rows int64
		for _, id := range workload {
			if err := eng.NodeQuery(id, func(query.Row) error { rows++; return nil }); err != nil {
				log.Fatal(err)
			}
		}
		hits, misses := eng.CacheStats()
		fmt.Printf("  cache %.0f%%: %8v avg/query  (%d rows, %d hits / %d misses)\n",
			frac*100, time.Since(start)/time.Duration(len(workload)), rows, hits, misses)
		eng.Close()
	}
}

func queryEnum(dir string) *lattice.Enum {
	eng, err := query.OpenDefault(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	return eng.Enum()
}

func kb(b int64) string { return fmt.Sprintf("%.0fKB", float64(b)/(1<<10)) }
