// Command cubebench regenerates the paper's tables and figures.
//
//	cubebench -exp fig14            # one experiment
//	cubebench -exp all              # the whole evaluation section
//	cubebench -exp fig23 -scale 0.1 -densities 0.04,0.4,4
//
// Dataset sizes are scaled down by default (see -scale); every result
// records its scale so shapes can be compared against the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cure/internal/bench"
	"cure/internal/obsv"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (table1, fig14..fig28, iceberg, ablation-sort, ablation-plan) or 'all'")
		scale     = flag.Float64("scale", 0, "dataset scale relative to the paper (default 0.02)")
		densities = flag.String("densities", "", "comma-separated APB-1 densities (default 0.004,0.04,0.4; paper: 0.4,4,40)")
		mem       = flag.Int64("mem", 0, "CURE memory budget in bytes for APB builds (default 32 MiB)")
		queries   = flag.Int("queries", 0, "node-query workload size (default 1000)")
		seed      = flag.Int64("seed", 0, "random seed (default 1)")
		maxDims   = flag.Int("maxdims", 0, "upper end of the dimensionality sweep (default 16; paper: 28)")
		par       = flag.Int("parallelism", 0, "worker count for every CURE build (0/1 = sequential; parallel-speedup sweeps its own counts)")
		noIndex   = flag.Bool("no-index", false, "restrict query-throughput to its full-scan arms (zone-map ablation)")
		compress  = flag.String("compress", "auto", "extent storage format for every CURE build: auto (compressed blocks) | none (fixed-width v1)")
		workDir   = flag.String("workdir", "", "scratch directory (default: a temp dir, removed on exit)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		format    = flag.String("format", "text", "output format: text | md | json")
		baseline  = flag.String("baseline", "", "bench JSON file (from -format json) to compare per-phase wall times against")
		regFail   = flag.Bool("regress-fail", false, "exit non-zero when the -baseline comparison flags regressions (default: report only)")
		regThresh = flag.Float64("regress-threshold", 0.20, "per-phase wall-time growth fraction the -baseline gate flags")
	)
	obs := obsv.RegisterFlags(flag.CommandLine)
	flag.Parse()

	cfg := bench.Config{
		Scale:        *scale,
		MemoryBudget: *mem,
		Queries:      *queries,
		Seed:         *seed,
		MaxDims:      *maxDims,
		Parallelism:  *par,
		NoIndex:      *noIndex,
		Compression:  *compress,
		WorkDir:      *workDir,
		Metrics:      obs.Registry(),
	}
	if *densities != "" {
		for _, part := range strings.Split(*densities, ",") {
			d, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fatalf("bad density %q: %v", part, err)
			}
			cfg.APBDensities = append(cfg.APBDensities, d)
		}
	}
	h, err := bench.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	defer h.Close()

	if *list {
		for _, id := range h.IDs() {
			fmt.Println(id)
		}
		return
	}
	if err := obs.Start(os.Stderr); err != nil {
		fatalf("%v", err)
	}
	defer func() {
		if err := obs.Finish(); err != nil {
			fatalf("%v", err)
		}
	}()
	render := func(r *bench.Result) string {
		switch *format {
		case "md":
			return r.Markdown()
		case "json":
			return r.JSON()
		default:
			return r.String()
		}
	}
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = h.IDs()
	}
	// Stream each result as its group completes; the whole suite can
	// take tens of minutes at larger scales.
	var results []*bench.Result
	for _, id := range ids {
		r, err := h.Run(strings.TrimSpace(id))
		if err != nil {
			fatalf("%v", err)
		}
		results = append(results, r)
		fmt.Println(render(r))
	}
	if *baseline != "" {
		base, err := bench.LoadResults(*baseline)
		if err != nil {
			fatalf("%v", err)
		}
		regs := bench.CompareRuns(base, results, *regThresh)
		fmt.Fprintln(os.Stderr, bench.CompareReport(regs, *regThresh))
		if len(regs) > 0 && *regFail {
			// os.Exit skips the deferred cleanup; run it by hand.
			h.Close()
			if err := obs.Finish(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			os.Exit(1)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cubebench: "+format+"\n", args...)
	os.Exit(1)
}
