// Command apbgen writes benchmark fact tables in the library's binary
// format.
//
//	apbgen -dataset apb -density 0.1 -out apb.bin
//	apbgen -dataset covtype -scale 0.5 -out cov.bin
//	apbgen -dataset synthetic -dims 8 -tuples 500000 -zipf 0.8 -out z.bin
//
// It also writes a <out>.hier.json hierarchy spec consumable by
// curectl build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cure/internal/gen"
	"cure/internal/hierarchy"
	"cure/internal/obsv"
	"cure/internal/relation"
)

// hierSpec mirrors curectl's hierarchy JSON.
type hierSpec struct {
	Dims []dimSpec `json:"dims"`
}

type dimSpec struct {
	Name   string      `json:"name"`
	Levels []levelSpec `json:"levels"`
}

type levelSpec struct {
	Name string `json:"name"`
	Card int32  `json:"card"`
}

func main() {
	var (
		dataset = flag.String("dataset", "apb", "apb | covtype | sep85l | synthetic")
		out     = flag.String("out", "", "output fact file (required)")
		density = flag.Float64("density", 0.1, "APB-1 density factor (0.1 → 1,239,300 tuples)")
		scale   = flag.Float64("scale", 1, "row-count scale for covtype/sep85l")
		dims    = flag.Int("dims", 8, "synthetic: number of dimensions")
		tuples  = flag.Int("tuples", 500_000, "synthetic: number of tuples")
		zipf    = flag.Float64("zipf", 0.8, "synthetic: zipf skew factor")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	obs := obsv.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *out == "" {
		fatalf("missing -out")
	}
	if err := obs.Start(os.Stderr); err != nil {
		fatalf("%v", err)
	}

	var (
		hier *hierarchy.Schema
		rows int64
		err  error
	)
	switch *dataset {
	case "apb":
		rows, hier, err = gen.APBToFile(*out, *density, *seed)
	case "covtype":
		var ft *relation.FactTable
		ft, hier, err = gen.CovTypeLike(*scale, *seed)
		if err == nil {
			rows = int64(ft.Len())
			err = relation.WriteFactFile(*out, ft)
		}
	case "sep85l":
		var ft *relation.FactTable
		ft, hier, err = gen.Sep85LLike(*scale, *seed)
		if err == nil {
			rows = int64(ft.Len())
			err = relation.WriteFactFile(*out, ft)
		}
	case "synthetic":
		var ft *relation.FactTable
		ft, hier, err = gen.Synthetic(gen.SyntheticSpec{Dims: *dims, Tuples: *tuples, Zipf: *zipf, Seed: *seed})
		if err == nil {
			rows = int64(ft.Len())
			err = relation.WriteFactFile(*out, ft)
		}
	default:
		fatalf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fatalf("%v", err)
	}

	spec := hierSpec{}
	for _, d := range hier.Dims {
		ds := dimSpec{Name: d.Name}
		for l := 0; l < d.AllLevel(); l++ {
			ds.Levels = append(ds.Levels, levelSpec{Name: d.LevelName(l), Card: d.Card(l)})
		}
		spec.Dims = append(spec.Dims, ds)
	}
	data, err := json.MarshalIndent(spec, "", " ")
	if err != nil {
		fatalf("%v", err)
	}
	hierPath := *out + ".hier.json"
	if err := os.WriteFile(hierPath, data, 0o644); err != nil {
		fatalf("%v", err)
	}
	if reg := obs.Registry(); reg != nil {
		reg.Counter("gen.rows").Add(rows)
		if fi, err := os.Stat(*out); err == nil {
			reg.Counter("gen.bytes_written").Add(fi.Size())
		}
	}
	if err := obs.Finish(); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d tuples) and %s\n", *out, rows, hierPath)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "apbgen: "+format+"\n", args...)
	os.Exit(1)
}
