package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"cure/internal/relation"
)

// writeTestFact writes a small fact file plus its hierarchy spec for
// end-to-end build runs: Product Code(8)→Class(2), Outlet(4), 64 rows.
func writeTestFact(t *testing.T, dir string) (factPath, hierPath string) {
	t.Helper()
	schema := &relation.Schema{DimNames: []string{"Product", "Outlet"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, 64)
	for i := 0; i < 64; i++ {
		ft.Append([]int32{int32(i % 8), int32(i % 4)}, []float64{float64(i)})
	}
	factPath = filepath.Join(dir, "fact.bin")
	if err := relation.WriteFactFile(factPath, ft); err != nil {
		t.Fatal(err)
	}
	hierPath = filepath.Join(dir, "hier.json")
	spec := `{"dims":[` +
		`{"name":"Product","levels":[{"name":"Code","card":8},{"name":"Class","card":2}]},` +
		`{"name":"Outlet","levels":[{"name":"Outlet","card":4}]}]}`
	if err := os.WriteFile(hierPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return factPath, hierPath
}

// TestFlightBundleOnWorkerPanic crashes a real parallel build through
// the production panic path (CURE_TEST_PANIC=worker makes the first
// cube worker task panic) and checks the whole flight-recorder loop:
// the process dies naming the node path and the bundle it wrote, the
// bundle is complete on disk, and `curectl doctor` parses it back into
// a report that names the panicking worker's node path.
func TestFlightBundleOnWorkerPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	bin := buildCurectl(t)
	dir := t.TempDir()
	fact, hier := writeTestFact(t, dir)
	flightDir := filepath.Join(dir, "flight")

	cmd := exec.Command(bin, "build",
		"-fact", fact, "-hier", hier, "-out", filepath.Join(dir, "cube"),
		"-parallelism", "2", "-flight-dir", flightDir)
	cmd.Env = append(os.Environ(), "CURE_TEST_PANIC=worker")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("build with injected worker panic exited zero:\n%s", out)
	}
	for _, want := range []string{"panic in cube worker", "node=Product.", "diagnostic bundle: "} {
		if !strings.Contains(string(out), want) {
			t.Errorf("crash output missing %q:\n%s", want, out)
		}
	}

	entries, err := os.ReadDir(flightDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasSuffix(entries[0].Name(), "-panic") {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("flight dir holds %v, want exactly one bundle-*-panic", names)
	}
	bundleDir := filepath.Join(flightDir, entries[0].Name())
	for _, name := range []string{
		"bundle.json", "metrics.json", "history.json", "mem_series.json",
		"queries.json", "goroutines.txt", "heap.pprof", "stack.txt",
	} {
		if _, err := os.Stat(filepath.Join(bundleDir, name)); err != nil {
			t.Errorf("bundle member %s missing: %v", name, err)
		}
	}

	docOut, err := exec.Command(bin, "doctor", flightDir).CombinedOutput()
	if err != nil {
		t.Fatalf("curectl doctor failed: %v\n%s", err, docOut)
	}
	for _, want := range []string{
		"INCIDENT REPORT",
		"reason  panic",
		"cube worker",
		"node=Product.",
		"injected test panic",
		"## Memory trajectory",
		"## Panic stack",
	} {
		if !strings.Contains(string(docOut), want) {
			t.Errorf("doctor report missing %q:\n%s", want, docOut)
		}
	}
}

// TestDoctorBadArgs pins the CLI contract: bad input exits non-zero
// with a curectl-prefixed diagnostic.
func TestDoctorBadArgs(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	bin := buildCurectl(t)
	out, err := exec.Command(bin, "doctor", filepath.Join(t.TempDir(), "nope")).CombinedOutput()
	if err == nil {
		t.Fatalf("doctor on a missing path exited zero:\n%s", out)
	}
	if !strings.Contains(string(out), "curectl: doctor:") {
		t.Fatalf("doctor stderr = %q", out)
	}
}
