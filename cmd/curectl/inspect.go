package main

import (
	"flag"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cure/internal/lattice"
	"cure/internal/storage"
)

// cmdInspect renders the per-node extent table of a cube directory from
// its manifest: rows, raw bytes, encoded bytes, compression ratio, and
// the encoding histogram each compressed extent settled on. Works on
// uncompressed (v1) cubes too, where every extent reports ratio 1.00.
func cmdInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	cube := fs.String("cube", "", "cube directory (or positional: curectl inspect <cube-dir>)")
	fs.Parse(args)
	if *cube == "" && fs.NArg() == 1 {
		*cube = fs.Arg(0)
	}
	if *cube == "" {
		fatalf("inspect needs -cube or a cube directory argument")
	}
	r, err := storage.OpenReader(*cube)
	if err != nil {
		fatalf("%v", err)
	}
	defer r.Close()
	m := r.Manifest()
	enum := r.Enum()
	hier := r.Hier()

	mode := m.Compression
	if mode == "" {
		mode = "none (fixed-width v1)"
	}
	fmt.Printf("manifest version: %d\n", m.Version)
	fmt.Printf("compression:      %s\n", mode)

	// histogram renders an encoding histogram as "enc:count" pairs.
	histogram := func(c *storage.ExtentCodec) string {
		if c == nil || len(c.Encodings) == 0 {
			return "-"
		}
		keys := make([]string, 0, len(c.Encodings))
		for k := range c.Encodings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s:%d", k, c.Encodings[k]))
		}
		return strings.Join(parts, " ")
	}
	ratio := func(raw, enc int64) string {
		if enc <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", float64(raw)/float64(enc))
	}

	type extRow struct {
		node           int64
		name, rel      string
		rows, raw, enc int64
		hist           string
	}
	var rows []extRow
	add := func(node int64, name, rel string, n, rawBytes int64, c *storage.ExtentCodec, hist string) {
		enc := rawBytes
		if c != nil {
			enc = c.EncodedBytes()
			rawBytes = c.RawBytes
		}
		rows = append(rows, extRow{node: node, name: name, rel: rel, rows: n, raw: rawBytes, enc: enc, hist: hist})
	}
	for k, nm := range m.Nodes {
		id, err := strconv.ParseInt(k, 10, 64)
		if err != nil {
			fatalf("manifest node key %q: %v", k, err)
		}
		name := enum.Name(lattice.NodeID(id))
		arity := 0
		for d, l := range enum.Decode(lattice.NodeID(id), nil) {
			if !hier.Dims[d].IsAll(l) {
				arity++
			}
		}
		if nm.NTRows > 0 {
			add(id, name, "nt", nm.NTRows, nm.NTRows*int64(m.NTRowWidth(arity)), nm.NTCodec, histogram(nm.NTCodec))
		}
		if nm.TTRows > 0 {
			if nm.TTKind == storage.TTBitmap {
				add(id, name, "tt(bm)", nm.TTRows, nm.TTBmLen, nil, "bitmap")
			} else {
				add(id, name, "tt", nm.TTRows, nm.TTRows*8, nm.TTCodec, histogram(nm.TTCodec))
			}
		}
		if nm.CATRows > 0 {
			add(id, name, "cat", nm.CATRows, nm.CATRows*int64(m.CATRowWidth()), nm.CATCodec, histogram(nm.CATCodec))
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].node != rows[j].node {
			return rows[i].node < rows[j].node
		}
		return rows[i].rel < rows[j].rel
	})
	if m.AggRows > 0 {
		add(-1, "(shared)", "agg", m.AggRows, m.AggRows*int64(m.AggRowWidth()), m.AggCodec, histogram(m.AggCodec))
	}

	fmt.Printf("%-6s %-28s %-7s %10s %12s %12s %8s  %s\n",
		"node", "name", "rel", "rows", "raw B", "enc B", "ratio", "encodings")
	var totRaw, totEnc int64
	for _, e := range rows {
		totRaw += e.raw
		totEnc += e.enc
		node := strconv.FormatInt(e.node, 10)
		if e.node < 0 {
			node = "-"
		}
		fmt.Printf("%-6s %-28s %-7s %10d %12d %12d %8s  %s\n",
			node, e.name, e.rel, e.rows, e.raw, e.enc, ratio(e.raw, e.enc), e.hist)
	}
	fmt.Printf("%-6s %-28s %-7s %10s %12d %12d %8s\n",
		"", "TOTAL", "", "", totRaw, totEnc, ratio(totRaw, totEnc))
	fmt.Printf("cube bytes on disk: %d\n", m.Sizes.Total())
	fmt.Printf("overall ratio: %s\n", ratio(totRaw, totEnc))

	// Finalize sidecar, when the cube carries one (older cubes don't):
	// per-sub-phase wall clocks, the pipeline's worker count, the codec
	// histogram, and the sampled-selection hit rate.
	st, err := storage.ReadFinalizeStats(*cube)
	if err != nil {
		return
	}
	fmt.Printf("\nfinalize (%s, parallelism %d, %d worker(s)):\n",
		orNone(st.Compression), st.Parallelism, st.Workers)
	phase := func(name string, sec float64) {
		if sec > 0 {
			fmt.Printf("  %-10s %8.3fs\n", name, sec)
		}
	}
	phase("compact", st.CompactSec)
	phase("compress", st.CompressSec)
	phase("zones", st.ZonesSec)
	phase("commit", st.CommitSec)
	if st.Extents > 0 {
		fmt.Printf("  extents=%d blocks=%d reread_bytes=%d commit_stalls=%d\n",
			st.Extents, st.Blocks, st.RereadBytes, st.CommitStalls)
	}
	if len(st.Encodings) > 0 {
		keys := make([]string, 0, len(st.Encodings))
		for k := range st.Encodings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s:%d", k, st.Encodings[k]))
		}
		fmt.Printf("  codec histogram: %s\n", strings.Join(parts, " "))
	}
	if st.SampledBlocks+st.Mispredicts > 0 {
		fmt.Printf("  sampled column-blocks: %d, mispredicts: %d (%.1f%%)\n",
			st.SampledBlocks, st.Mispredicts,
			100*float64(st.Mispredicts)/float64(st.SampledBlocks+st.Mispredicts))
	}
}

// orNone renders an empty compression mode as "none".
func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
