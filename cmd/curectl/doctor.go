package main

import (
	"encoding/json"
	"flag"
	"os"

	"cure/internal/obsv"
)

// cmdDoctor parses a flight-recorder diagnostic bundle and prints a
// human-readable incident report to stdout.
//
//	curectl doctor <bundle-dir | flight-dir>
//
// Given a flight directory (the -flight-dir of the crashed process),
// the newest bundle inside it is read. With -json the raw bundle
// manifest is printed instead of the report.
func cmdDoctor(args []string) {
	fs := flag.NewFlagSet("doctor", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print the bundle manifest as JSON instead of the report")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatalf("doctor: need exactly one bundle (or flight) directory argument")
	}
	b, err := obsv.ReadBundle(fs.Arg(0))
	if err != nil {
		fatalf("doctor: %v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b.Info); err != nil {
			fatalf("doctor: %v", err)
		}
		return
	}
	if err := b.WriteReport(os.Stdout); err != nil {
		fatalf("doctor: %v", err)
	}
}
