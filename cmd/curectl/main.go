// Command curectl builds, inspects, and queries CURE cubes.
//
//	curectl build -fact apb.bin -hier apb.bin.hier.json -out cube/ [-plus] [-dr] [-flat] [-mem 268435456]
//	curectl info  -cube cube/
//	curectl nodes -cube cube/
//	curectl query -cube cube/ -levels "Class,Retailer,ALL,ALL" [-limit 20]
//	curectl iceberg -cube cube/ -levels "Code,ALL,ALL,ALL" -min 100
//	curectl explain -cube cube/ -levels "Class,ALL,ALL,ALL" [-where ...] [-analyze] [-json]
//
// The hierarchy spec is JSON: {"dims":[{"name":"Product","levels":
// [{"name":"Code","card":6500},{"name":"Class","card":435}]}]}; roll-up
// maps default to contiguous ranges and can be given explicitly per level
// as "map":[...] (base code → level code).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cure/internal/core"
	"cure/internal/csvload"
	"cure/internal/estimate"
	"cure/internal/hierarchy"
	"cure/internal/obsv"
	"cure/internal/query"
	"cure/internal/relation"
	"cure/internal/storage"
	"cure/internal/update"
)

// diag writes a human-readable diagnostic line to stderr. All status and
// summary output goes through it so stdout carries only machine-readable
// data (query rows, listings, -metrics-out '-' JSON).
func diag(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format, args...)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "nodes":
		cmdNodes(os.Args[2:])
	case "query":
		cmdQuery(os.Args[2:], false)
	case "iceberg":
		cmdQuery(os.Args[2:], true)
	case "explain":
		cmdExplain(os.Args[2:])
	case "import":
		cmdImport(os.Args[2:])
	case "update":
		cmdUpdate(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "estimate":
		cmdEstimate(os.Args[2:])
	case "doctor":
		cmdDoctor(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: curectl build|info|inspect|nodes|query|iceberg|explain|import|update|verify|diff|estimate|doctor [flags]")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "curectl: "+format+"\n", args...)
	os.Exit(1)
}

// hierSpec is the JSON hierarchy description.
type hierSpec struct {
	Dims []struct {
		Name   string `json:"name"`
		Levels []struct {
			Name string  `json:"name"`
			Card int32   `json:"card"`
			Map  []int32 `json:"map,omitempty"`
		} `json:"levels"`
	} `json:"dims"`
}

func loadHier(path string) *hierarchy.Schema {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var spec hierSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		fatalf("parsing %s: %v", path, err)
	}
	var dims []*hierarchy.Dim
	for _, ds := range spec.Dims {
		if len(ds.Levels) == 0 {
			fatalf("dimension %q has no levels", ds.Name)
		}
		var names []string
		var cards []int32
		var maps [][]int32
		var acc []int32
		for i, ls := range ds.Levels {
			names = append(names, ls.Name)
			cards = append(cards, ls.Card)
			if i == 0 {
				continue
			}
			step := ls.Map
			if step == nil {
				step = hierarchy.BuildContiguousMap(cards[i-1], ls.Card)
			}
			if acc == nil {
				acc = step
			} else {
				acc = hierarchy.ComposeMaps(acc, step)
			}
			maps = append(maps, acc)
		}
		d, err := hierarchy.NewLinearDim(ds.Name, names, cards, maps)
		if err != nil {
			fatalf("%v", err)
		}
		dims = append(dims, d)
	}
	s, err := hierarchy.NewSchema(dims...)
	if err != nil {
		fatalf("%v", err)
	}
	return s
}

// parseAggs parses "-agg sum:0,count,min:1" into specs.
func parseAggs(s string, numMeasures int) []relation.AggSpec {
	if s == "" {
		specs := []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
		if numMeasures == 0 {
			specs = specs[1:]
		}
		return specs
	}
	var specs []relation.AggSpec
	for _, part := range strings.Split(s, ",") {
		fields := strings.SplitN(strings.TrimSpace(part), ":", 2)
		var f relation.AggFunc
		switch strings.ToLower(fields[0]) {
		case "sum":
			f = relation.AggSum
		case "count":
			f = relation.AggCount
		case "min":
			f = relation.AggMin
		case "max":
			f = relation.AggMax
		default:
			fatalf("unknown aggregate %q", fields[0])
		}
		spec := relation.AggSpec{Func: f}
		if f != relation.AggCount {
			if len(fields) != 2 {
				fatalf("aggregate %q needs a measure index, e.g. sum:0", part)
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil {
				fatalf("bad measure index in %q", part)
			}
			spec.Measure = m
		}
		if err := spec.Validate(numMeasures); err != nil {
			fatalf("%v", err)
		}
		specs = append(specs, spec)
	}
	return specs
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	fact := fs.String("fact", "", "fact table file (required)")
	hierPath := fs.String("hier", "", "hierarchy spec JSON (required)")
	out := fs.String("out", "", "output cube directory (required)")
	agg := fs.String("agg", "", "aggregates, e.g. sum:0,count (default: sum of measure 0 + count)")
	mem := fs.Int64("mem", 0, "memory budget in bytes (0 = in-memory build)")
	pool := fs.Int("pool", 0, "signature pool capacity (0 = default 1,000,000; -1 disables)")
	plus := fs.Bool("plus", false, "CURE+: post-process row-ids and bitmaps")
	dr := fs.Bool("dr", false, "CURE_DR: store NT dimension values inline")
	flat := fs.Bool("flat", false, "FCURE: flat cube at base levels only")
	iceberg := fs.Int64("iceberg", 0, "min-count threshold (iceberg cube)")
	par := fs.Int("parallelism", 0, "worker count for the build (0/1 = sequential; >1 fans the cubing recursion and the partitioning scan across cores)")
	scanBatch := fs.Int("scan-batch-rows", 0, "rows per partitioning-scan read batch (0 = ~1MiB of rows)")
	scanShard := fs.Int64("scan-shard-rows", 0, "rows per partitioning-scan shard; shard boundaries fix the deterministic merge order (0 = 8 batches per shard)")
	compress := fs.String("compress", "auto", `extent compression: "auto" (block-compressed columnar extents) or "none" (fixed-width v1 layout)`)
	obs := obsv.RegisterFlags(fs)
	fs.Parse(args)
	if *fact == "" || *hierPath == "" || *out == "" {
		fatalf("build needs -fact, -hier and -out")
	}
	fr, err := relation.OpenFactReader(*fact)
	if err != nil {
		fatalf("%v", err)
	}
	numMeasures := fr.Schema().NumMeasures()
	fr.Close()
	if err := obs.Start(os.Stderr); err != nil {
		fatalf("%v", err)
	}
	stats, err := core.Build(core.Options{
		Dir:           *out,
		FactPath:      *fact,
		Hier:          loadHier(*hierPath),
		AggSpecs:      parseAggs(*agg, numMeasures),
		MemoryBudget:  *mem,
		PoolCapacity:  *pool,
		Plus:          *plus,
		DimsInline:    *dr,
		Flat:          *flat,
		Iceberg:       *iceberg,
		Parallelism:   *par,
		ScanBatchRows: *scanBatch,
		ScanShardRows: *scanShard,
		Compression:   *compress,
		Metrics:       obs.Registry(),
	})
	if ferr := obs.Finish(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		fatalf("%v", err)
	}
	mode := "in-memory"
	if stats.Partitioned {
		mode = fmt.Sprintf("partitioned (L=%d, %d partitions, |N|=%d rows)",
			stats.PartitionLevel, stats.NumPartitions, stats.NRows)
	}
	diag("built cube in %v (%s)\n", stats.Elapsed, mode)
	diag(" nodes materialized: %d (%d relations)\n", stats.NodesMaterialized, stats.Relations)
	diag(" trivial tuples:     %d\n", stats.TTs)
	diag(" signatures:         %d (NTs %d, CAT groups %d, format %v)\n",
		stats.Pool.Total, stats.Pool.NTs, stats.Pool.CatGroups, stats.CatFormat)
	diag(" cube size:          %d bytes (NT %d, TT %d, CAT %d, AGG %d, bitmap %d)\n",
		stats.Sizes.Total(), stats.Sizes.NT, stats.Sizes.TT, stats.Sizes.CAT, stats.Sizes.Agg, stats.Sizes.Bitmap)
}

func openEngine(fs *flag.FlagSet, cube *string) *query.Engine {
	if *cube == "" {
		fatalf("missing -cube")
	}
	eng, err := query.OpenDefault(*cube)
	if err != nil {
		fatalf("%v", err)
	}
	return eng
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	cube := fs.String("cube", "", "cube directory")
	fs.Parse(args)
	eng := openEngine(fs, cube)
	defer eng.Close()
	m := eng.Manifest()
	fmt.Printf("fact table:     %s (%d rows)\n", m.FactFile, m.FactRows)
	fmt.Printf("aggregates:     %d\n", m.NumAggrs())
	fmt.Printf("CAT format:     %v\n", m.CatFormat)
	fmt.Printf("variants:       plus=%v dims-inline=%v iceberg=%d\n", m.Plus, m.DimsInline, m.Iceberg)
	if m.PartitionLevel >= 0 {
		fmt.Printf("partitioned at: level %d of %s\n", m.PartitionLevel, eng.Hier().Dims[0].Name)
	}
	fmt.Printf("lattice nodes:  %d total, %d materialized\n", eng.Enum().NumNodes(), len(m.Nodes))
	fmt.Printf("AGGREGATES:     %d tuples\n", m.AggRows)
	fmt.Printf("size:           %d bytes (NT %d, TT %d, CAT %d, AGG %d, bitmap %d)\n",
		m.Sizes.Total(), m.Sizes.NT, m.Sizes.TT, m.Sizes.CAT, m.Sizes.Agg, m.Sizes.Bitmap)
	var dims []string
	for _, d := range eng.Hier().Dims {
		var lv []string
		for l := 0; l < d.AllLevel(); l++ {
			lv = append(lv, fmt.Sprintf("%s(%d)", d.LevelName(l), d.Card(l)))
		}
		dims = append(dims, fmt.Sprintf("%s: %s", d.Name, strings.Join(lv, " → ")))
	}
	fmt.Printf("schema:\n %s\n", strings.Join(dims, "\n "))
}

func cmdNodes(args []string) {
	fs := flag.NewFlagSet("nodes", flag.ExitOnError)
	cube := fs.String("cube", "", "cube directory")
	fs.Parse(args)
	eng := openEngine(fs, cube)
	defer eng.Close()
	enum := eng.Enum()
	if enum.NumNodes() > 10_000 {
		fatalf("lattice has %d nodes; listing only supported for small lattices", enum.NumNodes())
	}
	for _, id := range enum.AllNodes() {
		n, err := eng.NodeCount(id)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%6d  %-40s %10d tuples\n", id, enum.Name(id), n)
	}
}

// parseLevels turns "Class,Retailer,ALL,ALL" (names or indices) into a
// level vector. Errors name the offending dimension or entry so a typo
// in -levels is directly actionable.
func parseLevels(hier *hierarchy.Schema, s string) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != hier.NumDims() {
		return nil, fmt.Errorf("-levels needs %d comma-separated entries (one per dimension), got %d", hier.NumDims(), len(parts))
	}
	levels := make([]int, len(parts))
	for d, raw := range parts {
		raw = strings.TrimSpace(raw)
		dim := hier.Dims[d]
		if strings.EqualFold(raw, "ALL") || raw == "*" {
			levels[d] = dim.AllLevel()
			continue
		}
		if idx, err := strconv.Atoi(raw); err == nil && idx >= 0 && idx <= dim.AllLevel() {
			levels[d] = idx
			continue
		}
		found := -1
		for l := 0; l < dim.AllLevel(); l++ {
			if strings.EqualFold(dim.LevelName(l), raw) {
				found = l
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("dimension %s has no level %q", dim.Name, raw)
		}
		levels[d] = found
	}
	return levels, nil
}

// parseWhere turns "Product.Class=3..7,Channel.Base=2" into predicates.
// Each clause is dim.level=lo or dim.level=lo..hi; dimension and level
// accept names or indices, codes are numeric.
func parseWhere(hier *hierarchy.Schema, s string) ([]query.Predicate, error) {
	if s == "" {
		return nil, nil
	}
	findDim := func(raw string) (int, error) {
		if idx, err := strconv.Atoi(raw); err == nil && idx >= 0 && idx < hier.NumDims() {
			return idx, nil
		}
		for d, dim := range hier.Dims {
			if strings.EqualFold(dim.Name, raw) {
				return d, nil
			}
		}
		return -1, fmt.Errorf("-where: unknown dimension %q", raw)
	}
	findLevel := func(d int, raw string) (int, error) {
		dim := hier.Dims[d]
		if idx, err := strconv.Atoi(raw); err == nil && idx >= 0 && idx <= dim.AllLevel() {
			return idx, nil
		}
		for l := 0; l <= dim.AllLevel(); l++ {
			if strings.EqualFold(dim.LevelName(l), raw) {
				return l, nil
			}
		}
		return -1, fmt.Errorf("-where: dimension %s has no level %q", dim.Name, raw)
	}
	var preds []query.Predicate
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		target, rng, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("-where: clause %q is not dim.level=lo[..hi]", clause)
		}
		dimRaw, levelRaw, ok := strings.Cut(strings.TrimSpace(target), ".")
		if !ok {
			return nil, fmt.Errorf("-where: clause %q names no level (want dim.level=...)", clause)
		}
		d, err := findDim(strings.TrimSpace(dimRaw))
		if err != nil {
			return nil, err
		}
		level, err := findLevel(d, strings.TrimSpace(levelRaw))
		if err != nil {
			return nil, err
		}
		loRaw, hiRaw, ranged := strings.Cut(strings.TrimSpace(rng), "..")
		lo, err := strconv.ParseInt(strings.TrimSpace(loRaw), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("-where: bad code %q in %q", loRaw, clause)
		}
		hi := lo
		if ranged {
			if hi, err = strconv.ParseInt(strings.TrimSpace(hiRaw), 10, 32); err != nil {
				return nil, fmt.Errorf("-where: bad code %q in %q", hiRaw, clause)
			}
		}
		preds = append(preds, query.Predicate{Dim: d, Level: level, Lo: int32(lo), Hi: int32(hi)})
	}
	return preds, nil
}

func cmdQuery(args []string, iceberg bool) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	cube := fs.String("cube", "", "cube directory")
	levelsFlag := fs.String("levels", "", "one level per dimension, by name/index/ALL")
	limit := fs.Int("limit", 20, "max rows to print (0 = all)")
	minCount := fs.Float64("min", 1, "iceberg: HAVING count(*) > min")
	dictPath := fs.String("dict", "", "dictionary JSON from 'curectl import' to decode base-level codes")
	whereFlag := fs.String("where", "", `selection clauses "dim.level=lo[..hi]", comma-separated (dim/level by name or index, codes numeric)`)
	noIndex := fs.Bool("no-index", false, "disable zone-map block pruning (full extent scans)")
	obs := obsv.RegisterFlags(fs)
	fs.Parse(args)
	if *cube == "" {
		fatalf("missing -cube")
	}
	eng, err := query.Open(*cube, query.Options{CacheFraction: 1, PinAggregates: true, Metrics: obs.Registry(), Queries: obs.Queries(), NoIndex: *noIndex})
	if err != nil {
		fatalf("%v", err)
	}
	defer eng.Close()
	if *levelsFlag == "" {
		fatalf("missing -levels")
	}
	levels, err := parseLevels(eng.Hier(), *levelsFlag)
	if err != nil {
		fatalf("%v", err)
	}
	id := eng.Enum().Encode(levels)
	if err := obs.Start(os.Stderr); err != nil {
		fatalf("%v", err)
	}
	diag("node %d (%s)\n", id, eng.Enum().Name(id))

	// Optional dictionary decoding: base-level codes print as their
	// original strings (coarser levels have no dictionary entries unless
	// the hierarchy was derived with csvload.BuildDim).
	var dict *csvload.Dictionary
	if *dictPath != "" {
		var err error
		if dict, err = csvload.LoadDictionary(*dictPath); err != nil {
			fatalf("%v", err)
		}
	}
	hier := eng.Hier()
	active := make([]int, 0, hier.NumDims())
	for d, l := range levels {
		if !hier.Dims[d].IsAll(l) {
			active = append(active, d)
		}
	}
	renderDim := func(i int, code int32) string {
		d := active[i]
		if dict != nil && levels[d] == 0 && d < len(dict.Dims) {
			if v := dict.Dims[d].Value(code); v != "" {
				return v
			}
		}
		return fmt.Sprintf("%d", code)
	}
	printed := 0
	total := 0
	emit := func(row query.Row) error {
		total++
		if *limit == 0 || printed < *limit {
			printed++
			cells := make([]string, 0, len(row.Dims)+len(row.Aggrs))
			for i, d := range row.Dims {
				cells = append(cells, renderDim(i, d))
			}
			for _, a := range row.Aggrs {
				cells = append(cells, fmt.Sprintf("%g", a))
			}
			fmt.Println(" " + strings.Join(cells, "\t"))
		}
		return nil
	}
	preds, err := parseWhere(eng.Hier(), *whereFlag)
	if err != nil {
		fatalf("%v", err)
	}
	if iceberg {
		if len(preds) > 0 {
			fatalf("-where is not supported with iceberg queries")
		}
		countIdx := -1
		for i, s := range eng.Manifest().AggSpecs {
			if s.Func == relation.AggCount {
				countIdx = i
				break
			}
		}
		if countIdx < 0 {
			fatalf("cube has no COUNT aggregate; iceberg queries need one")
		}
		err = eng.IcebergQuery(id, countIdx, *minCount, emit)
	} else if len(preds) > 0 {
		err = eng.NodeQueryWhere(id, preds, emit)
	} else {
		err = eng.NodeQuery(id, emit)
	}
	if ferr := obs.Finish(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		fatalf("%v", err)
	}
	if printed < total {
		diag(" … and %d more rows\n", total-printed)
	}
	diag("%d rows\n", total)
}

// cmdExplain plans (and with -analyze, runs) one node query and renders
// the plan: extents in execution order, zone-map pruning verdicts with
// the kept row ranges, access paths, and estimated vs actual rows and
// bytes.
func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	cube := fs.String("cube", "", "cube directory")
	levelsFlag := fs.String("levels", "", "one level per dimension, by name/index/ALL")
	whereFlag := fs.String("where", "", `selection clauses "dim.level=lo[..hi]", comma-separated`)
	analyze := fs.Bool("analyze", false, "run the query and report actual rows, time, and I/O")
	asJSON := fs.Bool("json", false, "emit the plan as JSON instead of a tree")
	noIndex := fs.Bool("no-index", false, "disable zone-map block pruning (full extent scans)")
	obs := obsv.RegisterFlags(fs)
	fs.Parse(args)
	if *cube == "" {
		fatalf("missing -cube")
	}
	if *levelsFlag == "" {
		fatalf("missing -levels")
	}
	eng, err := query.Open(*cube, query.Options{CacheFraction: 1, PinAggregates: true, Metrics: obs.Registry(), Queries: obs.Queries(), NoIndex: *noIndex})
	if err != nil {
		fatalf("%v", err)
	}
	defer eng.Close()
	levels, err := parseLevels(eng.Hier(), *levelsFlag)
	if err != nil {
		fatalf("%v", err)
	}
	preds, err := parseWhere(eng.Hier(), *whereFlag)
	if err != nil {
		fatalf("%v", err)
	}
	if err := obs.Start(os.Stderr); err != nil {
		fatalf("%v", err)
	}
	id := eng.Enum().Encode(levels)
	plan, err := eng.Explain(id, preds, *analyze)
	if ferr := obs.Finish(); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		fatalf("%v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(plan); err != nil {
			fatalf("%v", err)
		}
		return
	}
	renderPlan(plan)
}

// renderPlan prints a plan as a tree on stdout.
func renderPlan(p *query.Plan) {
	fmt.Printf("EXPLAIN %s node %d (%s)\n", p.Op, p.Node, p.NodeName)
	if p.Where != "" {
		fmt.Printf(" where %s\n", p.Where)
	}
	if p.NoIndex {
		fmt.Println(" zone-map pruning disabled (-no-index)")
	}
	for i, ext := range p.Extents {
		branch := "├─"
		if i == len(p.Extents)-1 {
			branch = "└─"
		}
		compressed := ""
		if ext.Compressed {
			compressed = " (compressed)"
		}
		fmt.Printf(" %s %-3s node %-6d %-28s rows %-8d scan %-8d %-11s est %d B%s\n",
			branch, ext.Relation, ext.Node, ext.NodeName, ext.Rows, ext.ScanRows, ext.Access, ext.EstBytes, compressed)
		if z := ext.Zones; z != nil {
			cont := "│"
			if i == len(p.Extents)-1 {
				cont = " "
			}
			fmt.Printf(" %s    zones: %d blocks, %d kept, %d skipped", cont, z.Blocks, z.Kept, z.Skipped)
			if z.Narrowed {
				fmt.Printf(" (sorted-slot narrowing)")
			}
			if len(z.Ranges) > 0 && len(z.Ranges) <= 8 {
				fmt.Printf("; ranges")
				for _, rg := range z.Ranges {
					fmt.Printf(" [%d,%d)", rg.Lo, rg.Hi)
				}
			}
			fmt.Println()
		}
	}
	fmt.Printf(" estimate: %d rows scanned, %d bytes read\n", p.EstScanRows, p.EstBytes)
	if a := p.Actual; a != nil {
		fmt.Printf(" actual (query %d): %d rows in %dus\n", p.QueryID, a.Rows, a.ElapsedUs)
		fmt.Printf("  io: %d bytes in %d reads; cache %d hits / %d faults", a.IO.BytesRead, a.IO.Reads, a.IO.CacheHits, a.IO.PagesFaulted)
		if a.IO.BytesDecoded > 0 {
			fmt.Printf("; %d bytes decoded", a.IO.BytesDecoded)
		}
		fmt.Println()
		fmt.Printf("  scanned: tt %d, nt %d, cat %d; zones kept %d, skipped %d\n",
			a.IO.TTScanned, a.IO.NTScanned, a.IO.CATScanned, a.IO.ZoneBlocksKept, a.IO.ZoneBlocksSkipped)
	}
}

// cmdImport loads a CSV file into the binary fact format, writing the
// dictionaries and a flat hierarchy template next to it.
func cmdImport(args []string) {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	csvPath := fs.String("csv", "", "input CSV file with a header row (required)")
	dims := fs.String("dims", "", "comma-separated dimension column names (required)")
	measures := fs.String("measures", "", "comma-separated measure column names")
	out := fs.String("out", "", "output fact file (required)")
	sep := fs.String("sep", ",", "field separator")
	fs.Parse(args)
	if *csvPath == "" || *dims == "" || *out == "" {
		fatalf("import needs -csv, -dims and -out")
	}
	spec := csvload.Spec{DimCols: splitList(*dims), MeasureCols: splitList(*measures)}
	if r := []rune(*sep); len(r) == 1 {
		spec.Comma = r[0]
	}
	ft, dict, err := csvload.LoadFile(*csvPath, spec)
	if err != nil {
		fatalf("%v", err)
	}
	if err := relation.WriteFactFile(*out, ft); err != nil {
		fatalf("%v", err)
	}
	if err := dict.Save(*out + ".dict.json"); err != nil {
		fatalf("%v", err)
	}
	// Flat hierarchy template the user can extend with levels.
	type levelSpec struct {
		Name string `json:"name"`
		Card int32  `json:"card"`
	}
	type dimSpec struct {
		Name   string      `json:"name"`
		Levels []levelSpec `json:"levels"`
	}
	tmpl := struct {
		Dims []dimSpec `json:"dims"`
	}{}
	for _, d := range dict.Dims {
		tmpl.Dims = append(tmpl.Dims, dimSpec{Name: d.Name, Levels: []levelSpec{{Name: d.Name, Card: d.Card()}}})
	}
	data, err := json.MarshalIndent(tmpl, "", " ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*out+".hier.json", data, 0o644); err != nil {
		fatalf("%v", err)
	}
	diag("imported %d rows into %s (+ .dict.json, .hier.json)\n", ft.Len(), *out)
	for _, d := range dict.Dims {
		diag(" %-20s %6d distinct values\n", d.Name, d.Card())
	}
}

// cmdUpdate merges a delta fact file into an existing cube, producing a
// refreshed cube directory.
func cmdUpdate(args []string) {
	fs := flag.NewFlagSet("update", flag.ExitOnError)
	cube := fs.String("cube", "", "existing cube directory (required)")
	out := fs.String("out", "", "refreshed cube directory (required)")
	deltaPath := fs.String("delta", "", "delta fact file (required)")
	fs.Parse(args)
	if *cube == "" || *out == "" || *deltaPath == "" {
		fatalf("update needs -cube, -out and -delta")
	}
	delta, err := relation.ReadFactFile(*deltaPath)
	if err != nil {
		fatalf("%v", err)
	}
	stats, err := update.Apply(update.Options{OldDir: *cube, NewDir: *out, Delta: delta})
	if err != nil {
		fatalf("%v", err)
	}
	diag("merged %d delta rows across %d nodes in %v\n", stats.DeltaRows, stats.Nodes, stats.Elapsed)
	diag(" inserted %d, updated %d, carried %d tuples (%d TTs)\n",
		stats.Inserted, stats.Updated, stats.Carried, stats.TTs)
	diag(" refreshed cube size: %d bytes\n", stats.Sizes.Total())
}

// cmdVerify recomputes sampled nodes from the fact table and compares
// them against the cube.
func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	cube := fs.String("cube", "", "cube directory (required)")
	sample := fs.Int("sample", 0, "number of random nodes to verify (0 = all)")
	seed := fs.Int64("seed", 1, "sampling seed")
	files := fs.Bool("files", false, "also verify relation-file checksums")
	fs.Parse(args)
	if *files {
		r, err := storage.OpenReader(*cube)
		if err != nil {
			fatalf("%v", err)
		}
		bad, err := r.VerifyChecksums()
		r.Close()
		if err != nil {
			fatalf("%v", err)
		}
		if len(bad) > 0 {
			diag("CORRUPTED files: %v\n", bad)
			os.Exit(1)
		}
		diag("file checksums OK\n")
	}
	eng := openEngine(fs, cube)
	defer eng.Close()
	rep, err := eng.Verify(*sample, *seed)
	if err != nil {
		fatalf("%v", err)
	}
	diag("verified %d nodes, %d tuples\n", rep.NodesChecked, rep.TuplesChecked)
	if rep.OK() {
		diag("cube is consistent with its fact table\n")
		return
	}
	for _, e := range rep.Errors {
		diag(" MISMATCH: %v\n", e)
	}
	os.Exit(1)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// cmdDiff compares two cube directories on their query answers.
func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	a := fs.String("a", "", "first cube directory (required)")
	b := fs.String("b", "", "second cube directory (required)")
	fs.Parse(args)
	if *a == "" || *b == "" {
		fatalf("diff needs -a and -b")
	}
	ea, err := query.OpenDefault(*a)
	if err != nil {
		fatalf("%v", err)
	}
	defer ea.Close()
	eb, err := query.OpenDefault(*b)
	if err != nil {
		fatalf("%v", err)
	}
	defer eb.Close()
	rep, err := query.Diff(ea, eb)
	if err != nil {
		fatalf("%v", err)
	}
	diag("compared %d nodes (%d vs %d tuples)\n", rep.NodesCompared, rep.TuplesA, rep.TuplesB)
	if rep.Equal() {
		diag("cubes are query-equivalent\n")
		return
	}
	for _, d := range rep.Differences {
		diag(" DIFF: %v\n", d)
	}
	os.Exit(1)
}

// cmdEstimate predicts cube sizes and the partitioning plan without
// building anything.
func cmdEstimate(args []string) {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	hierPath := fs.String("hier", "", "hierarchy spec JSON (required)")
	rows := fs.Int64("rows", 0, "fact-table row count (required)")
	measures := fs.Int("measures", 1, "number of measure columns")
	aggs := fs.Int("aggs", 2, "number of cube aggregates")
	mem := fs.Int64("mem", 0, "memory budget in bytes (0 = unlimited)")
	top := fs.Int("top", 10, "largest nodes to list")
	fs.Parse(args)
	if *hierPath == "" || *rows <= 0 {
		fatalf("estimate needs -hier and -rows")
	}
	hier := loadHier(*hierPath)
	schema := &relation.Schema{}
	for _, d := range hier.Dims {
		schema.DimNames = append(schema.DimNames, d.Name)
	}
	for i := 0; i < *measures; i++ {
		schema.MeasureNames = append(schema.MeasureNames, fmt.Sprintf("M%d", i))
	}
	plan, err := estimate.BuildPlan(hier, schema, *rows, *mem, *aggs)
	if err != nil {
		fatalf("%v", err)
	}
	est := plan.Estimate
	fmt.Printf("fact table: %d rows × %d B = %d bytes\n", *rows, plan.RowBytes, plan.TableBytes)
	fmt.Printf("lattice:    %d nodes\n", len(est.Nodes))
	fmt.Printf("expected cube tuples:        %.3g (uncondensed)\n", est.FullTuples)
	fmt.Printf("expected non-trivial tuples: %.3g\n", est.AggregatedTuples)
	fmt.Printf("expected size: %.3g bytes uncondensed, ≥%.3g bytes condensed (CURE)\n", est.FullBytes, est.CondensedBytes)
	switch {
	case plan.InMemory:
		fmt.Println("strategy: in-memory build")
	case plan.ChoiceErr != "":
		fmt.Printf("strategy: partitioning infeasible — %s\n", plan.ChoiceErr)
	default:
		c := plan.Choice
		fmt.Printf("strategy: partition on %s level %d → %d partitions of ≈%d bytes, |N| ≈ %d bytes\n",
			hier.Dims[0].Name, c.Level, c.NumPartitions, c.PartitionBytes, c.NBytes)
	}
	fmt.Printf("largest nodes:\n")
	for i, n := range est.Nodes {
		if i >= *top {
			break
		}
		fmt.Printf(" %-40s %12.0f tuples (%.0f%% trivial)\n", n.Name, n.Tuples, n.TrivialFraction*100)
	}
}
