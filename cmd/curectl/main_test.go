package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cure/internal/core"
	"cure/internal/hierarchy"
	"cure/internal/relation"
)

func testHier(t *testing.T) *hierarchy.Schema {
	t.Helper()
	m := hierarchy.BuildContiguousMap(8, 2)
	a, err := hierarchy.NewLinearDim("Product", []string{"Code", "Class"}, []int32{8, 2}, [][]int32{m})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := hierarchy.NewSchema(a, hierarchy.NewFlatDim("Outlet", 4))
	if err != nil {
		t.Fatal(err)
	}
	return hier
}

func TestParseLevelsErrors(t *testing.T) {
	hier := testHier(t)
	cases := []struct {
		in, want string
	}{
		{"0", "needs 2 comma-separated entries"},
		{"0,0,0", "needs 2 comma-separated entries"},
		{"Bogus,0", `dimension Product has no level "Bogus"`},
		{"0,9", `dimension Outlet has no level "9"`},
		{"-1,0", `dimension Product has no level "-1"`},
	}
	for _, tc := range cases {
		if _, err := parseLevels(hier, tc.in); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseLevels(%q) = %v, want error containing %q", tc.in, err, tc.want)
		}
	}
	levels, err := parseLevels(hier, "Class,ALL")
	if err != nil {
		t.Fatal(err)
	}
	if levels[0] != 1 || levels[1] != hier.Dims[1].AllLevel() {
		t.Fatalf("parseLevels(Class,ALL) = %v", levels)
	}
}

func TestParseWhereErrors(t *testing.T) {
	hier := testHier(t)
	cases := []struct {
		in, want string
	}{
		{"Nope.Class=1", `unknown dimension "Nope"`},
		{"Product.Bogus=1", `dimension Product has no level "Bogus"`},
		{"Product.Class", "is not dim.level=lo[..hi]"},
		{"Product=3", "names no level"},
		{"Product.Class=abc", `bad code "abc"`},
		{"Product.Class=1..xyz", `bad code "xyz"`},
	}
	for _, tc := range cases {
		if _, err := parseWhere(hier, tc.in); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseWhere(%q) = %v, want error containing %q", tc.in, err, tc.want)
		}
	}
	preds, err := parseWhere(hier, "Product.Class=1, Outlet.0=0..2")
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 || preds[0].Level != 1 || preds[1].Hi != 2 {
		t.Fatalf("parseWhere = %+v", preds)
	}
	if preds2, err := parseWhere(hier, ""); err != nil || preds2 != nil {
		t.Fatalf("empty -where = %+v, %v", preds2, err)
	}
}

var (
	curectlOnce sync.Once
	curectlDir  string
	curectlBin  string
	curectlErr  error
)

// TestMain cleans up the shared curectl binary built by buildCurectl.
func TestMain(m *testing.M) {
	code := m.Run()
	if curectlDir != "" {
		os.RemoveAll(curectlDir)
	}
	os.Exit(code)
}

// buildCurectl compiles the curectl binary once per test run. The
// binary lives in a package-owned temp dir (removed in TestMain), not a
// t.TempDir, so it survives past the first test that asked for it.
func buildCurectl(t *testing.T) string {
	t.Helper()
	curectlOnce.Do(func() {
		dir, err := os.MkdirTemp("", "curectl-bin")
		if err != nil {
			curectlErr = err
			return
		}
		curectlDir = dir
		curectlBin = filepath.Join(dir, "curectl")
		out, err := exec.Command("go", "build", "-o", curectlBin, ".").CombinedOutput()
		if err != nil {
			curectlErr = err
			t.Logf("go build: %s", out)
		}
	})
	if curectlErr != nil {
		t.Fatalf("building curectl: %v", curectlErr)
	}
	return curectlBin
}

func buildTestCube(t *testing.T) string {
	t.Helper()
	hier := testHier(t)
	schema := &relation.Schema{DimNames: []string{"Product", "Outlet"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, 64)
	for i := 0; i < 64; i++ {
		ft.Append([]int32{int32(i % 8), int32(i % 4)}, []float64{float64(i)})
	}
	dir := filepath.Join(t.TempDir(), "cube")
	if _, err := core.BuildFromTable(ft, core.Options{
		Dir: dir, Hier: hier,
		AggSpecs: []relation.AggSpec{{Func: relation.AggSum, Measure: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCLIQueryBadInput runs the real binary: a malformed node path or
// predicate must exit non-zero with a diagnostic on stderr, and a valid
// query must exit zero.
func TestCLIQueryBadInput(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	bin := buildCurectl(t)
	cube := buildTestCube(t)

	cases := []struct {
		args   []string
		stderr string
	}{
		{[]string{"query", "-cube", cube, "-levels", "Bogus,0"}, "has no level"},
		{[]string{"query", "-cube", cube, "-levels", "0"}, "needs 2 comma-separated entries"},
		{[]string{"query", "-cube", cube, "-levels", "0,0", "-where", "Nope.Class=1"}, "unknown dimension"},
		{[]string{"query", "-cube", cube, "-levels", "0,0", "-where", "Product.Class=abc"}, "bad code"},
		{[]string{"explain", "-cube", cube, "-levels", "0,0", "-where", "garbage"}, "-where"},
	}
	for _, tc := range cases {
		cmd := exec.Command(bin, tc.args...)
		var stderr strings.Builder
		cmd.Stderr = &stderr
		err := cmd.Run()
		if err == nil {
			t.Errorf("curectl %v exited zero on bad input", tc.args)
			continue
		}
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == 0 {
			t.Errorf("curectl %v: %v", tc.args, err)
		}
		if !strings.Contains(stderr.String(), "curectl: ") || !strings.Contains(stderr.String(), tc.stderr) {
			t.Errorf("curectl %v stderr = %q, want it to contain %q", tc.args, stderr.String(), tc.stderr)
		}
	}

	// The happy paths still exit zero.
	for _, args := range [][]string{
		{"query", "-cube", cube, "-levels", "0,0", "-where", "Product.Class=1"},
		{"explain", "-cube", cube, "-levels", "0,0", "-where", "Product.Class=1", "-analyze"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Errorf("curectl %v failed: %v\n%s", args, err, out)
		}
	}
}
