package cure_test

// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§7) at laptop scale, one testing.B target per exhibit, plus
// micro-benchmarks for the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark logs the regenerated table (visible with -v); the
// cmd/cubebench tool runs the same experiments at configurable scale.

import (
	"math/rand"
	"path/filepath"
	"testing"

	cure "cure"
	"cure/internal/bench"
	"cure/internal/gen"
	"cure/internal/lattice"
	"cure/internal/relation"
	"cure/internal/signature"
	"cure/internal/sortutil"
)

// benchConfig keeps figure benchmarks in the seconds range.
func benchConfig() bench.Config {
	return bench.Config{
		Scale:        0.002,
		APBDensities: []float64{0.0005, 0.002},
		MemoryBudget: 1 << 20,
		Queries:      40,
		Seed:         1,
		MaxDims:      12,
	}
}

// benchExperiment reruns one paper exhibit per iteration and logs the
// regenerated table once.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		h, err := bench.New(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		res, err := h.Run(id)
		if err != nil {
			h.Close()
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
		h.Close()
	}
}

func BenchmarkTable1PartitionPlan(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFig14ConstructionReal(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15StorageReal(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16QueryReal(b *testing.B)        { benchExperiment(b, "fig16") }
func BenchmarkFig17Caching(b *testing.B)          { benchExperiment(b, "fig17") }
func BenchmarkFig18PoolSize(b *testing.B)         { benchExperiment(b, "fig18") }
func BenchmarkFig19DimsTime(b *testing.B)         { benchExperiment(b, "fig19") }
func BenchmarkFig20DimsSpace(b *testing.B)        { benchExperiment(b, "fig20") }
func BenchmarkFig21SkewTime(b *testing.B)         { benchExperiment(b, "fig21") }
func BenchmarkFig22SkewSpace(b *testing.B)        { benchExperiment(b, "fig22") }
func BenchmarkFig23APBTime(b *testing.B)          { benchExperiment(b, "fig23") }
func BenchmarkFig24APBSpace(b *testing.B)         { benchExperiment(b, "fig24") }
func BenchmarkFig25APBQuery(b *testing.B)         { benchExperiment(b, "fig25") }
func BenchmarkFig26FlatVsHierTime(b *testing.B)   { benchExperiment(b, "fig26") }
func BenchmarkFig27FlatVsHierSpace(b *testing.B)  { benchExperiment(b, "fig27") }
func BenchmarkFig28FlatVsHierQuery(b *testing.B)  { benchExperiment(b, "fig28") }
func BenchmarkIcebergQuery(b *testing.B)          { benchExperiment(b, "iceberg") }
func BenchmarkAblationSortMode(b *testing.B)      { benchExperiment(b, "ablation-sort") }
func BenchmarkAblationSharedPlan(b *testing.B)    { benchExperiment(b, "ablation-plan") }

// --- Micro-benchmarks for the hot paths. ---

// BenchmarkCUREBuildInMemory measures the core in-memory construction on
// a small APB-1 table (per-op cost amortizes dataset generation away).
func BenchmarkCUREBuildInMemory(b *testing.B) {
	ft, hier, err := gen.APB(0.0005, 1)
	if err != nil {
		b.Fatal(err)
	}
	specs := []cure.AggSpec{{Func: cure.AggSum, Measure: 0}, {Func: cure.AggCount}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(b.TempDir(), "cube")
		if _, err := cure.BuildFromTable(ft, cure.BuildOptions{Dir: dir, Hier: hier, AggSpecs: specs}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ft.Len()), "tuples")
}

// BenchmarkNodeQuery measures a single mid-size node query on a built
// APB-1 cube.
func BenchmarkNodeQuery(b *testing.B) {
	ft, hier, err := gen.APB(0.0005, 1)
	if err != nil {
		b.Fatal(err)
	}
	dir := filepath.Join(b.TempDir(), "cube")
	specs := []cure.AggSpec{{Func: cure.AggSum, Measure: 0}, {Func: cure.AggCount}}
	if _, err := cure.BuildFromTable(ft, cure.BuildOptions{Dir: dir, Hier: hier, AggSpecs: specs}); err != nil {
		b.Fatal(err)
	}
	eng, err := cure.OpenCube(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	node := eng.Enum().Encode([]int{1, 1, 3, 1}) // Class × Retailer
	b.ResetTimer()
	var rows int64
	for i := 0; i < b.N; i++ {
		if err := eng.NodeQuery(node, func(cure.Row) error { rows++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows)/float64(b.N), "rows/query")
}

// BenchmarkSignaturePoolFlush measures classification throughput of the
// signature pool (sort + group + emit).
func BenchmarkSignaturePoolFlush(b *testing.B) {
	const n = 100_000
	rng := rand.New(rand.NewSource(3))
	aggrs := make([][2]float64, n)
	rrowids := make([]int64, n)
	for i := range aggrs {
		aggrs[i] = [2]float64{float64(rng.Intn(5000)), float64(rng.Intn(8))}
		rrowids[i] = int64(rng.Intn(20000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool, err := signature.NewPool(2, n, discardSink{})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < n; j++ {
			a := aggrs[j]
			if err := pool.Add(lattice.NodeID(j%64), rrowids[j], a[:]); err != nil {
				b.Fatal(err)
			}
		}
		if err := pool.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(n, "signatures")
}

type discardSink struct{}

func (discardSink) WriteNT(lattice.NodeID, int64, []float64) error { return nil }
func (discardSink) AppendAggregate(int64, []float64) (int64, error) {
	return 0, nil
}
func (discardSink) WriteCAT(lattice.NodeID, int64, int64) error { return nil }

// BenchmarkCountingSortSkewed measures the sorting hot path under the
// paper's high-skew regime.
func BenchmarkCountingSortSkewed(b *testing.B) {
	benchSort(b, false)
}

// BenchmarkQuickSortSkewed is the ablation counterpart.
func BenchmarkQuickSortSkewed(b *testing.B) {
	benchSort(b, true)
}

func benchSort(b *testing.B, forceQuick bool) {
	b.Helper()
	const n = 200_000
	rng := rand.New(rand.NewSource(5))
	z := gen.NewZipf(rng, 10_000, 2.0)
	col := make([]int32, n)
	for i := range col {
		col[i] = z.Next()
	}
	idx := make([]int32, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range idx {
			idx[j] = int32(j)
		}
		var s sortutil.Sorter
		s.ForceQuick = forceQuick
		s.Sort(idx, sortutil.SliceKeyer{Col: col, Hi: 10_000})
	}
	b.SetBytes(n * 4)
}

// BenchmarkAggregateRange measures the segment-aggregation inner loop.
func BenchmarkAggregateRange(b *testing.B) {
	schema := &relation.Schema{DimNames: []string{"A"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, 100_000)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100_000; i++ {
		ft.Append([]int32{0}, []float64{float64(rng.Intn(100))})
	}
	specs := []relation.AggSpec{{Func: relation.AggSum, Measure: 0}, {Func: relation.AggCount}}
	idx := sortutil.Iota(nil, ft.Len())
	buf := make([]float64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = relation.AggregateRange(ft, specs, idx, 0, ft.Len(), buf)
	}
	b.SetBytes(int64(ft.Len()) * 8)
}

// BenchmarkEnumEncodeDecode measures node-id arithmetic.
func BenchmarkEnumEncodeDecode(b *testing.B) {
	enum := lattice.NewEnum(gen.APBSchema())
	levels := make([]int, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := lattice.NodeID(int64(i) % enum.NumNodes())
		levels = enum.Decode(id, levels)
		if enum.Encode(levels) != id {
			b.Fatal("round trip failed")
		}
	}
}

// BenchmarkHierarchyMapCode measures the roll-up map lookup.
func BenchmarkHierarchyMapCode(b *testing.B) {
	d := gen.APBSchema().Dims[0]
	b.ResetTimer()
	var acc int32
	for i := 0; i < b.N; i++ {
		acc += d.MapCode(int32(i%6500), 3)
	}
	_ = acc
}

func BenchmarkAblationPlanHeight(b *testing.B) { benchExperiment(b, "ablation-height") }

func BenchmarkIncrementalUpdate(b *testing.B) { benchExperiment(b, "update") }
