package cure_test

// Runnable godoc examples for the public facade. The data is the fact
// table of the paper's Figure 9.

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	cure "cure"
	"cure/internal/hierarchy"
	"cure/internal/relation"
)

// fig9Table builds the paper's Figure 9a fact table (0-based codes).
func fig9Table() *relation.FactTable {
	schema := &relation.Schema{DimNames: []string{"A", "B", "C"}, MeasureNames: []string{"M"}}
	ft := relation.NewFactTable(schema, 5)
	for _, row := range [][4]int32{
		{0, 0, 0, 10}, {0, 0, 1, 20}, {1, 1, 2, 40}, {2, 1, 0, 45}, {2, 2, 2, 45},
	} {
		ft.Append([]int32{row[0], row[1], row[2]}, []float64{float64(row[3])})
	}
	return ft
}

func ExampleBuildFromTable() {
	hier, err := hierarchy.NewSchema(
		hierarchy.NewFlatDim("A", 3),
		hierarchy.NewFlatDim("B", 3),
		hierarchy.NewFlatDim("C", 3),
	)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	stats, err := cure.BuildFromTable(fig9Table(), cure.BuildOptions{
		Dir:      filepath.Join(dir, "cube"),
		Hier:     hier,
		AggSpecs: []cure.AggSpec{{Func: cure.AggSum, Measure: 0}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes materialized:", stats.NodesMaterialized)

	eng, err := cure.OpenCube(filepath.Join(dir, "cube"))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Node A: SUM(M) grouped by dimension A alone — compare Figure 9b.
	nodeA := eng.Enum().Encode([]int{0, 1, 1})
	type pair struct {
		a   int32
		sum float64
	}
	var rows []pair
	if err := eng.NodeQuery(nodeA, func(row cure.Row) error {
		rows = append(rows, pair{row.Dims[0], row.Aggrs[0]})
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].a < rows[j].a })
	for _, r := range rows {
		fmt.Printf("A=%d SUM(M)=%g\n", r.a, r.sum)
	}
	// Output:
	// nodes materialized: 8
	// A=0 SUM(M)=30
	// A=1 SUM(M)=40
	// A=2 SUM(M)=90
}

func ExampleEngine_IcebergQuery() {
	hier, err := hierarchy.NewSchema(
		hierarchy.NewFlatDim("A", 3),
		hierarchy.NewFlatDim("B", 3),
		hierarchy.NewFlatDim("C", 3),
	)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := cure.BuildFromTable(fig9Table(), cure.BuildOptions{
		Dir:  filepath.Join(dir, "cube"),
		Hier: hier,
		AggSpecs: []cure.AggSpec{
			{Func: cure.AggSum, Measure: 0},
			{Func: cure.AggCount},
		},
	}); err != nil {
		log.Fatal(err)
	}
	eng, err := cure.OpenCube(filepath.Join(dir, "cube"))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	// Groups of node A with count(*) > 1 — trivial tuples are skipped
	// without ever being read.
	nodeA := eng.Enum().Encode([]int{0, 1, 1})
	var lines []string
	if err := eng.IcebergQuery(nodeA, 1, 1, func(row cure.Row) error {
		lines = append(lines, fmt.Sprintf("A=%d count=%g sum=%g", row.Dims[0], row.Aggrs[1], row.Aggrs[0]))
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// A=0 count=2 sum=30
	// A=2 count=2 sum=90
}
